//! Shared-memory event-streaming primitives for the VARAN N-version execution
//! framework reproduction.
//!
//! This crate contains the communication substrate described in §3.3 of
//! *"Varan the Unbelievable: An Efficient N-version Execution Framework"*
//! (Hosek & Cadar, ASPLOS 2015):
//!
//! * [`Event`] — the fixed-size (64-byte, cache-line sized) record the leader
//!   publishes for every external action (system call, signal, fork, exit).
//! * [`RingBuffer`] — a Disruptor-style single-producer / multi-consumer ring
//!   buffer held entirely in memory, giving genuinely lock-free communication
//!   between the leader and its followers (§3.3.1): seqlock slot storage
//!   under cursor-gated publication, a cached minimum gating sequence in the
//!   producer, and batched consumption that advances the gating sequence
//!   once per drained batch (see `ring.rs` module docs for the ordering
//!   argument).
//! * [`WaitLock`] — the blocking-wait primitive used by followers when the
//!   leader is stuck in a long blocking system call (§3.3.1).
//! * [`LamportClock`] — the per-variant logical clock used to order events
//!   across the ring buffers of a multi-threaded application (§3.3.3).
//! * [`PoolAllocator`] — the bucketed shared-memory pool allocator used for
//!   out-of-line system-call payloads (§3.3.4).
//! * [`EventPump`] — the paper's *discarded* first design (one queue per
//!   follower plus a central pump), kept as an ablation baseline.
//! * [`journal`] — the segmented, disk-backed spill journal that extends the
//!   bounded in-memory ring into an unbounded catch-up log for followers
//!   that join (or lag) at runtime, with retention anchored at the oldest
//!   live kernel checkpoint, per-frame CRC32C checksums ([`crc32c`]),
//!   sealed-segment trailer hashes, a verify-on-reopen scrub and
//!   anchor-aligned compaction (docs/DURABILITY.md).
//!
//! In the original system these structures live in a POSIX shared-memory
//! segment mapped into every version's address space; in this reproduction the
//! versions are threads of one process and the structures are shared through
//! [`std::sync::Arc`], which preserves the synchronisation algorithms and
//! memory layout while remaining portable (see `DESIGN.md`, substitution
//! table).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use varan_ring::{Event, EventKind, RingBuffer, WaitStrategy};
//!
//! # fn main() -> Result<(), varan_ring::RingError> {
//! // A leader and two followers share a 256-slot ring.
//! let ring: Arc<RingBuffer<Event>> = Arc::new(RingBuffer::new(256, 2, WaitStrategy::Spin)?);
//! let producer = ring.producer();
//! let mut consumer = ring.consumer(0)?;
//!
//! producer.publish(Event::syscall(1 /* write */, &[1, 0, 64], 64));
//! let event = consumer.next_blocking();
//! assert_eq!(event.kind(), EventKind::Syscall);
//! assert_eq!(event.result(), 64);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod clock;
pub mod crc32c;
mod error;
mod event;
pub mod journal;
mod pump;
mod ring;
mod sequence;
pub mod shard;
mod shmem;
mod waitlock;

pub use clock::{ClockOrdering, LamportClock, VariantClock};
pub use error::RingError;
pub use event::{
    fold_signature, Event, EventKind, SharedPtr, EVENT_INLINE_ARGS, EVENT_SIZE,
    SIGNATURE_FOLD_SEED,
};
pub use journal::{
    EventJournal, JournalConfig, JournalError, JournalFaults, JournalRecord, ScrubKind,
    ScrubReport,
};
pub use pump::{EventPump, PumpQueue};
pub use ring::{Consumer, Producer, RingBuffer, WaitStrategy};
pub use sequence::Sequence;
pub use shard::{shard_for_key, Shard, ShardError, ShardSet, ShardSpec};
pub use shmem::{AllocStats, PoolAllocator, PoolConfig, SharedRegion};
pub use waitlock::WaitLock;
