//! The fixed-size event record streamed from the leader to its followers.
//!
//! Each event is deliberately sized to a single cache line (64 bytes on
//! modern x86 CPUs, §3.3.1 of the paper) so that publishing an event never
//! straddles cache lines.  System calls whose arguments are passed by value
//! fit entirely into one event; arguments passed by reference are copied into
//! the shared memory pool and the event only carries a [`SharedPtr`]
//! identifying that region.

use serde::{Deserialize, Serialize};

use crate::crc32c::crc32c;

/// Size, in bytes, of a single event: exactly one cache line.
pub const EVENT_SIZE: usize = 64;

/// Seed of the per-batch signature digest: the FNV-1a offset basis.
///
/// A divergence-checking window starts its running digest here and folds
/// each event's [`Event::signature`] in with [`fold_signature`]; leader and
/// follower digests over the same event sequence are then bit-identical.
pub const SIGNATURE_FOLD_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds one per-event signature into a running batch digest (FNV-1a over
/// the eight little-endian bytes of `sig`).
///
/// The fold is order-sensitive, so two windows that contain the same
/// signatures in a different order produce different digests — a reordered
/// replay is a divergence, not a rearrangement.
#[must_use]
pub fn fold_signature(acc: u64, sig: u64) -> u64 {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut acc = acc;
    for byte in sig.to_le_bytes() {
        acc = (acc ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }
    acc
}

/// Number of by-value system-call arguments that fit inline in an event.
///
/// x86-64 system calls take up to six register arguments; the event keeps the
/// first four inline (the remaining two are only needed by a handful of calls
/// and are spilled to shared memory when present).
pub const EVENT_INLINE_ARGS: usize = 4;

/// Classification of the external actions recorded by the leader.
///
/// Events consist primarily of regular system-call invocations, but also of
/// signals, process forks and exits (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
pub enum EventKind {
    /// Padding/unused slot. Freshly initialised ring slots hold this kind.
    Empty = 0,
    /// A regular system call executed by the leader.
    Syscall = 1,
    /// An asynchronous signal delivered to the leader.
    Signal = 2,
    /// A `fork`/`clone` performed by the leader; followers must fork too.
    Fork = 3,
    /// An `exit`/`exit_group`; followers must terminate the matching task.
    Exit = 4,
    /// A file descriptor was transferred over the data channel (§3.3.2);
    /// the event synchronises the point at which followers must receive it.
    FdTransfer = 5,
    /// Leader replacement notification used during transparent failover (§5.1).
    LeaderSwitch = 6,
    /// Synthetic checkpoint marker used by the record-replay clients (§5.4).
    Checkpoint = 7,
}

impl EventKind {
    /// Returns `true` for events that terminate the task that issued them.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(self, EventKind::Exit)
    }

    /// Looks a kind up by its `u8` value (the on-disk journal encoding).
    #[must_use]
    pub fn from_u8(value: u8) -> Option<EventKind> {
        Some(match value {
            0 => EventKind::Empty,
            1 => EventKind::Syscall,
            2 => EventKind::Signal,
            3 => EventKind::Fork,
            4 => EventKind::Exit,
            5 => EventKind::FdTransfer,
            6 => EventKind::LeaderSwitch,
            7 => EventKind::Checkpoint,
            _ => return None,
        })
    }
}

impl Default for EventKind {
    fn default() -> Self {
        EventKind::Empty
    }
}

/// A "shared pointer": an offset/length pair identifying a region inside the
/// shared memory pool (§3.3.1).
///
/// Events are only 64 bytes, so payloads that do not fit (e.g. the buffer
/// returned by `read`) are placed in pool memory and referenced by one of
/// these handles.  The null handle (`offset == 0 && len == 0`) means "no
/// out-of-line payload".
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct SharedPtr {
    offset: u32,
    len: u32,
}

impl SharedPtr {
    /// The null shared pointer: no out-of-line payload.
    pub const NULL: SharedPtr = SharedPtr { offset: 0, len: 0 };

    /// Creates a shared pointer covering `len` bytes starting at `offset`
    /// inside the pool arena.
    #[must_use]
    pub fn new(offset: u32, len: u32) -> Self {
        SharedPtr { offset, len }
    }

    /// Offset of the region inside the pool arena, in bytes.
    #[must_use]
    pub fn offset(self) -> u32 {
        self.offset
    }

    /// Length of the region, in bytes.
    #[must_use]
    pub fn len(self) -> u32 {
        self.len
    }

    /// Returns `true` if this is the null handle (no payload).
    #[must_use]
    pub fn is_null(self) -> bool {
        self == Self::NULL
    }

    /// Returns `true` if the region is zero length.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.len == 0
    }
}

/// A single 64-byte record in the event stream.
///
/// The leader writes one event for every intercepted external action; the
/// followers read the stream and mimic the leader's behaviour without
/// re-executing the action themselves (§3.3).
///
/// # Examples
///
/// ```
/// use varan_ring::{Event, EventKind};
///
/// let event = Event::syscall(0 /* read */, &[3, 0, 512], 512).with_clock(7).with_tid(2);
/// assert_eq!(event.kind(), EventKind::Syscall);
/// assert_eq!(event.sysno(), 0);
/// assert_eq!(event.result(), 512);
/// assert_eq!(event.clock(), 7);
/// assert_eq!(event.tid(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(C, align(64))]
pub struct Event {
    kind: EventKind,
    /// System call (or signal) number.
    sysno: u16,
    /// Thread index within the variant that produced the event.
    tid: u32,
    /// Lamport timestamp attached by the producing variant (§3.3.3).
    clock: u64,
    /// Result returned by the leader's execution of the action.
    result: i64,
    /// Inline by-value arguments.
    args: [u64; EVENT_INLINE_ARGS],
    /// Out-of-line payload, if any.
    shared: SharedPtr,
}

impl Default for Event {
    fn default() -> Self {
        Event {
            kind: EventKind::Empty,
            sysno: 0,
            tid: 0,
            clock: 0,
            result: 0,
            args: [0; EVENT_INLINE_ARGS],
            shared: SharedPtr::NULL,
        }
    }
}

impl Event {
    /// Creates a system-call event with the given number, inline arguments and
    /// result.
    ///
    /// At most [`EVENT_INLINE_ARGS`] arguments are stored inline; extra
    /// arguments must be spilled to shared memory by the caller.
    #[must_use]
    pub fn syscall(sysno: u16, args: &[u64], result: i64) -> Self {
        let mut inline = [0u64; EVENT_INLINE_ARGS];
        for (slot, value) in inline.iter_mut().zip(args.iter()) {
            *slot = *value;
        }
        Event {
            kind: EventKind::Syscall,
            sysno,
            args: inline,
            result,
            ..Event::default()
        }
    }

    /// Creates a signal-delivery event for signal number `signo`.
    #[must_use]
    pub fn signal(signo: u16) -> Self {
        Event {
            kind: EventKind::Signal,
            sysno: signo,
            ..Event::default()
        }
    }

    /// Creates a fork event; `child` identifies the new process tuple.
    #[must_use]
    pub fn fork(child: u64) -> Self {
        Event {
            kind: EventKind::Fork,
            args: [child, 0, 0, 0],
            ..Event::default()
        }
    }

    /// Creates an exit event carrying the exit status of the leader task.
    #[must_use]
    pub fn exit(status: i64) -> Self {
        Event {
            kind: EventKind::Exit,
            result: status,
            ..Event::default()
        }
    }

    /// Creates a file-descriptor-transfer synchronisation event.
    ///
    /// The descriptor value observed by the leader is carried in `fd`; the
    /// actual duplication happens over the data channel (§3.3.2).
    #[must_use]
    pub fn fd_transfer(fd: i64) -> Self {
        Event {
            kind: EventKind::FdTransfer,
            result: fd,
            ..Event::default()
        }
    }

    /// Creates a leader-switch notification used during transparent failover.
    #[must_use]
    pub fn leader_switch(new_leader: u64) -> Self {
        Event {
            kind: EventKind::LeaderSwitch,
            args: [new_leader, 0, 0, 0],
            ..Event::default()
        }
    }

    /// Creates a checkpoint marker used by the record-replay clients.
    #[must_use]
    pub fn checkpoint(id: u64) -> Self {
        Event {
            kind: EventKind::Checkpoint,
            args: [id, 0, 0, 0],
            ..Event::default()
        }
    }

    /// Overrides the event kind, consuming and returning the event.  Used
    /// when reconstructing an event from its journal record, whose frame
    /// stores the kind explicitly.
    #[must_use]
    pub fn with_kind(mut self, kind: EventKind) -> Self {
        self.kind = kind;
        self
    }

    /// Attaches a Lamport timestamp, consuming and returning the event.
    #[must_use]
    pub fn with_clock(mut self, clock: u64) -> Self {
        self.clock = clock;
        self
    }

    /// Attaches the producing thread index, consuming and returning the event.
    #[must_use]
    pub fn with_tid(mut self, tid: u32) -> Self {
        self.tid = tid;
        self
    }

    /// Attaches an out-of-line payload handle, consuming and returning the event.
    #[must_use]
    pub fn with_shared(mut self, shared: SharedPtr) -> Self {
        self.shared = shared;
        self
    }

    /// Overrides the recorded result, consuming and returning the event.
    #[must_use]
    pub fn with_result(mut self, result: i64) -> Self {
        self.result = result;
        self
    }

    /// The kind of external action this event records.
    #[must_use]
    pub fn kind(&self) -> EventKind {
        self.kind
    }

    /// The system-call (or signal) number.
    #[must_use]
    pub fn sysno(&self) -> u16 {
        self.sysno
    }

    /// The producing thread index within its variant.
    #[must_use]
    pub fn tid(&self) -> u32 {
        self.tid
    }

    /// The Lamport timestamp attached by the producing variant.
    #[must_use]
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// The result the leader observed for this action.
    #[must_use]
    pub fn result(&self) -> i64 {
        self.result
    }

    /// The inline by-value arguments.
    #[must_use]
    pub fn args(&self) -> &[u64; EVENT_INLINE_ARGS] {
        &self.args
    }

    /// The out-of-line payload handle ([`SharedPtr::NULL`] when absent).
    #[must_use]
    pub fn shared(&self) -> SharedPtr {
        self.shared
    }

    /// Returns `true` if the event carries an out-of-line payload.
    #[must_use]
    pub fn has_payload(&self) -> bool {
        !self.shared.is_null()
    }

    /// The event's replay signature: a CRC32C over the identity fields a
    /// follower can compute *before* replaying the call — kind, sysno, tid
    /// and the inline arguments — widened to `u64` for the per-slot
    /// signature lane.
    ///
    /// The Lamport clock, the leader's result and the payload handle are
    /// deliberately excluded: those are assigned by the leader, so a
    /// follower computes the identical signature from its own intercepted
    /// request and the divergence fast path can compare one folded digest
    /// per batch ([`fold_signature`]) instead of byte-comparing events.
    #[must_use]
    pub fn signature(&self) -> u64 {
        let mut bytes = [0u8; 1 + 2 + 4 + 8 * EVENT_INLINE_ARGS];
        bytes[0] = self.kind as u8;
        bytes[1..3].copy_from_slice(&self.sysno.to_le_bytes());
        bytes[3..7].copy_from_slice(&self.tid.to_le_bytes());
        for (i, arg) in self.args.iter().enumerate() {
            let at = 7 + i * 8;
            bytes[at..at + 8].copy_from_slice(&arg.to_le_bytes());
        }
        u64::from(crc32c(&bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_fits_one_cache_line() {
        assert_eq!(std::mem::size_of::<Event>(), EVENT_SIZE);
        assert_eq!(std::mem::align_of::<Event>(), EVENT_SIZE);
    }

    #[test]
    fn syscall_event_truncates_extra_args() {
        let event = Event::syscall(9, &[1, 2, 3, 4, 5, 6], 0);
        assert_eq!(event.args(), &[1, 2, 3, 4]);
    }

    #[test]
    fn syscall_event_pads_missing_args() {
        let event = Event::syscall(9, &[42], -1);
        assert_eq!(event.args(), &[42, 0, 0, 0]);
        assert_eq!(event.result(), -1);
    }

    #[test]
    fn builders_compose() {
        let ptr = SharedPtr::new(128, 512);
        let event = Event::syscall(0, &[3], 512)
            .with_clock(99)
            .with_tid(7)
            .with_shared(ptr)
            .with_result(256);
        assert_eq!(event.clock(), 99);
        assert_eq!(event.tid(), 7);
        assert_eq!(event.shared(), ptr);
        assert_eq!(event.result(), 256);
        assert!(event.has_payload());
    }

    #[test]
    fn constructors_set_kinds() {
        assert_eq!(Event::signal(11).kind(), EventKind::Signal);
        assert_eq!(Event::fork(3).kind(), EventKind::Fork);
        assert_eq!(Event::exit(0).kind(), EventKind::Exit);
        assert_eq!(Event::fd_transfer(5).kind(), EventKind::FdTransfer);
        assert_eq!(Event::leader_switch(1).kind(), EventKind::LeaderSwitch);
        assert_eq!(Event::checkpoint(9).kind(), EventKind::Checkpoint);
        assert_eq!(Event::default().kind(), EventKind::Empty);
    }

    #[test]
    fn exit_is_terminal() {
        assert!(EventKind::Exit.is_terminal());
        assert!(!EventKind::Syscall.is_terminal());
    }

    #[test]
    fn shared_ptr_null_semantics() {
        assert!(SharedPtr::NULL.is_null());
        assert!(SharedPtr::NULL.is_empty());
        assert!(!SharedPtr::new(64, 8).is_null());
        assert!(SharedPtr::new(64, 0).is_empty());
        assert!(!Event::default().has_payload());
    }

    #[test]
    fn signature_covers_identity_fields_only() {
        let base = Event::syscall(1, &[3, 0, 512], 512);
        // Leader-assigned fields do not perturb the signature: a follower
        // computes the same value from its own request before replay.
        assert_eq!(base.signature(), base.with_clock(77).signature());
        assert_eq!(base.signature(), base.with_result(-1).signature());
        assert_eq!(
            base.signature(),
            base.with_shared(SharedPtr::new(64, 8)).signature()
        );
        // Identity fields do.
        assert_ne!(base.signature(), base.with_tid(2).signature());
        assert_ne!(base.signature(), Event::syscall(2, &[3, 0, 512], 512).signature());
        assert_ne!(base.signature(), Event::syscall(1, &[4, 0, 512], 512).signature());
        assert_ne!(base.signature(), Event::signal(1).signature());
    }

    #[test]
    fn fold_is_order_sensitive_and_deterministic() {
        let a = Event::syscall(0, &[1], 0).signature();
        let b = Event::syscall(1, &[2], 0).signature();
        let ab = fold_signature(fold_signature(SIGNATURE_FOLD_SEED, a), b);
        let ba = fold_signature(fold_signature(SIGNATURE_FOLD_SEED, b), a);
        assert_ne!(ab, ba, "fold must detect reordered replay");
        assert_eq!(
            ab,
            fold_signature(fold_signature(SIGNATURE_FOLD_SEED, a), b),
            "fold is deterministic"
        );
    }

    #[test]
    fn events_are_send_sync_copy() {
        fn assert_traits<T: Send + Sync + Copy + Default>() {}
        assert_traits::<Event>();
    }
}
