//! Property-based tests for the spill journal's on-disk format.
//!
//! The journal is the record of truth a joining follower replays, so the
//! properties are blunt: any batch of events survives spill → reload
//! byte-identically (across segment rotations), a torn final segment —
//! the writer died mid-append — is truncated to the last whole frame, never
//! fatal and never corrupting the surviving prefix, and any single-bit flip
//! anywhere in a sealed segment is *detected* by the frame CRCs or the
//! trailer hash, never decoded into records that differ from the originals
//! (docs/DURABILITY.md).

use proptest::prelude::*;

use varan_ring::journal::{
    decode_segment, decode_segment_lossy, encode_segment, JournalConfig,
};
use varan_ring::{EventJournal, EventKind, JournalRecord};

/// Deterministically expands a compact seed tuple into a record, covering
/// every event kind, all six argument registers and the three payload
/// shapes (absent, empty, non-empty).
fn build_record(seed: u64, payload_len: usize, has_payload: bool) -> JournalRecord {
    JournalRecord {
        kind: EventKind::from_u8((seed % 8) as u8).expect("kinds 0..=7 exist"),
        sysno: (seed >> 8) as u16,
        tid: (seed % 11) as u32,
        clock: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        result: (seed as i64).wrapping_sub(1 << 40),
        args: [
            seed,
            !seed,
            seed.rotate_left(17),
            seed ^ 0xdead_beef,
            seed.wrapping_shl(3),
            u64::MAX - seed,
        ],
        payload: if has_payload {
            Some((0..payload_len).map(|i| (seed as u8).wrapping_add(i as u8)).collect())
        } else {
            None
        },
    }
}

fn temp_dir(tag: &str, case: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "varan-journal-prop-{tag}-{}-{case}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn arbitrary_batches_survive_spill_and_reload_byte_identical(
        seeds in proptest::collection::vec(any::<u64>(), 1..120),
        payload_lens in proptest::collection::vec(0usize..200, 1..120),
        segment_records in 1usize..24,
    ) {
        let records: Vec<JournalRecord> = seeds
            .iter()
            .zip(payload_lens.iter().cycle())
            .enumerate()
            .map(|(i, (&seed, &len))| build_record(seed, len, i % 3 != 2))
            .collect();

        // Pure segment encoding round-trips exactly.
        let bytes = encode_segment(7, &records);
        let (first, decoded) = decode_segment(&bytes).unwrap();
        prop_assert_eq!(first, 7);
        prop_assert_eq!(&decoded, &records);

        // Spilling through a real journal (with rotation at an arbitrary
        // segment size) and reopening the directory reproduces the exact
        // record sequence.
        let dir = temp_dir("roundtrip", seeds[0] ^ segment_records as u64);
        {
            let journal = EventJournal::open(
                JournalConfig::new(&dir).with_segment_records(segment_records),
            )
            .unwrap();
            for (i, record) in records.iter().enumerate() {
                prop_assert_eq!(journal.append(record.clone()).unwrap(), i as u64);
            }
        } // drop flushes the active segment
        let reopened = EventJournal::open(
            JournalConfig::new(&dir).with_segment_records(segment_records),
        )
        .unwrap();
        prop_assert_eq!(reopened.tail_sequence(), records.len() as u64);
        let (start, reloaded) = reopened.read_from(0, usize::MAX).unwrap();
        prop_assert_eq!(start, 0);
        prop_assert_eq!(&reloaded, &records);
        // Byte-identical frames: re-encoding the reloaded records gives the
        // same bytes as encoding the originals.
        prop_assert_eq!(
            encode_segment(0, &reloaded),
            encode_segment(0, &records)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_final_segment_is_truncated_not_fatal(
        seeds in proptest::collection::vec(any::<u64>(), 2..40),
        torn_frame_pick in any::<u64>(),
        offset_pick in any::<u64>(),
    ) {
        let records: Vec<JournalRecord> = seeds
            .iter()
            .enumerate()
            .map(|(i, &seed)| build_record(seed, (seed % 60) as usize, i % 2 == 0))
            .collect();
        let bytes = encode_segment(0, &records);
        // Pick a frame and cut strictly *inside* it (a cut exactly on a
        // frame boundary is just a valid shorter segment, not a torn one).
        let frame_sizes: Vec<usize> = records
            .iter()
            .map(|record| {
                let mut frame = Vec::new();
                record.encode_into(&mut frame);
                frame.len()
            })
            .collect();
        let torn_frame = (torn_frame_pick % records.len() as u64) as usize;
        let frame_start = 16 + frame_sizes[..torn_frame].iter().sum::<usize>();
        let offset = 1 + (offset_pick % (frame_sizes[torn_frame] as u64 - 1)) as usize;
        let cut = frame_start + offset;
        let torn = &bytes[..cut];

        // Strict decoding refuses the torn segment...
        prop_assert!(decode_segment(torn).is_err());
        // ...lossy decoding recovers exactly the whole-frame prefix.
        let (first, recovered, torn_at) = decode_segment_lossy(torn).unwrap();
        prop_assert_eq!(first, 0);
        prop_assert_eq!(&records[..torn_frame], &recovered);
        prop_assert_eq!(torn_at, Some(frame_start));

        // A journal directory whose newest segment is torn reopens with the
        // recovered prefix and keeps appending from there.
        let dir = temp_dir("torn", seeds[0] ^ cut as u64);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("seg-00000000000000000000.vrj"), torn).unwrap();
        let journal = EventJournal::open(JournalConfig::new(&dir)).unwrap();
        prop_assert_eq!(journal.tail_sequence(), torn_frame as u64);
        let next = journal.append(build_record(99, 8, true)).unwrap();
        prop_assert_eq!(next, torn_frame as u64);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_is_replay_equivalent(
        seeds in proptest::collection::vec(any::<u64>(), 4..80),
        segment_records in 2usize..12,
        anchor_pick in any::<u64>(),
    ) {
        // Replaying from the anchor is byte-identical before and after
        // compaction, whatever the rotation pattern and wherever the anchor
        // lands (segment boundary, mid-segment, inside the active segment).
        let records: Vec<JournalRecord> = seeds
            .iter()
            .enumerate()
            .map(|(i, &seed)| build_record(seed, (seed % 50) as usize, i % 3 != 1))
            .collect();
        let dir = temp_dir("compact-equiv", seeds[0] ^ (segment_records as u64) << 8);
        let journal = EventJournal::open(
            JournalConfig::new(&dir).with_segment_records(segment_records),
        )
        .unwrap();
        for record in &records {
            journal.append(record.clone()).unwrap();
        }
        let anchor = anchor_pick % (records.len() as u64 + 1);
        journal.set_anchor(anchor);

        let before = journal.read_from(anchor, usize::MAX).unwrap();
        journal.compact_to_anchor().unwrap();
        let after = journal.read_from(anchor, usize::MAX).unwrap();
        prop_assert_eq!(&before, &after);
        prop_assert_eq!(after.0, anchor.min(records.len() as u64));
        prop_assert_eq!(
            encode_segment(after.0, &after.1),
            encode_segment(before.0, &before.1)
        );
        // Compaction is idempotent.
        prop_assert_eq!(journal.compact_to_anchor().unwrap(), 0);
        drop(journal);

        // Reopening the compacted directory reproduces the same suffix, and
        // the scrub finds nothing to complain about.
        let reopened = EventJournal::open(
            JournalConfig::new(&dir).with_segment_records(segment_records),
        )
        .unwrap();
        prop_assert!(reopened.scrub_reports().is_empty());
        let reread = reopened.read_from(anchor, usize::MAX).unwrap();
        prop_assert_eq!(&reread, &after);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn any_single_bit_flip_in_a_sealed_segment_is_detected(
        seeds in proptest::collection::vec(any::<u64>(), 1..16),
        flip_pick in any::<u64>(),
        bit in 0u8..8,
    ) {
        let records: Vec<JournalRecord> = seeds
            .iter()
            .enumerate()
            .map(|(i, &seed)| build_record(seed, (seed % 40) as usize, i % 2 == 0))
            .collect();
        let bytes = encode_segment(3, &records);
        let at = (flip_pick % bytes.len() as u64) as usize;
        let mut flipped = bytes.clone();
        flipped[at] ^= 1 << bit;
        // Every byte of a sealed segment is covered by some check — magic,
        // frame CRCs, or the trailer fold (which also covers the
        // first-sequence field and the stored CRCs themselves).  A flip may
        // surface as corrupt, truncated or bad magic, but it must never
        // round-trip into a record stream that differs from the original.
        match decode_segment(&flipped) {
            Err(_) => {}
            Ok((first, decoded)) => {
                prop_assert_eq!(first, 3);
                prop_assert_eq!(&decoded, &records);
            }
        }
    }
}
