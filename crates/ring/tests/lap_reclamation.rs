//! Property tests for lap-based pool reclamation and the incremental
//! batch-hash lane.
//!
//! The producer in these tests mirrors `LeaderCore`: it frees payload
//! regions strictly below its reclamation horizon (the minimum lap counter
//! over every active consumer), with freed regions **poisoned** so any
//! consumer still holding a staged pointer into a recycled region reads a
//! poison byte instead of its expected fill — turning a reclamation bug
//! into a deterministic assertion failure rather than a silent wrong read.

use std::collections::VecDeque;
use std::sync::Arc;

use proptest::prelude::*;
use varan_ring::{
    fold_signature, Event, PoolAllocator, PoolConfig, RingBuffer, SharedPtr, SharedRegion,
    WaitStrategy, SIGNATURE_FOLD_SEED,
};

const CAPACITY: usize = 16;
const PAYLOAD: usize = 64;
const POISON: u8 = 0xAA;

/// The byte every payload of ring sequence `seq` is filled with (never the
/// poison byte).
fn fill_for(seq: u64) -> u8 {
    let fill = (seq % 251) as u8;
    if fill == POISON {
        fill.wrapping_add(1)
    } else {
        fill
    }
}

/// Per-consumer replay state: events drained (gate advanced) but whose
/// payloads are still pool-resident, exactly like the monitor's zero-copy
/// staged queue.
struct Laggard {
    consumer: varan_ring::Consumer<Event>,
    staged: VecDeque<(u64, SharedPtr)>,
    lap_target: u64,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary publish / drain / replay interleavings with 1–4 lap-gated
    /// consumers: no consumer ever observes a poisoned (recycled) or torn
    /// payload through a staged pointer.
    #[test]
    fn lap_gated_consumers_never_observe_recycled_payloads(
        consumers in 1usize..5,
        ops in proptest::collection::vec((0u8..5u8, 1usize..9usize), 1..160),
    ) {
        let ring: Arc<RingBuffer<Event>> =
            Arc::new(RingBuffer::new(CAPACITY, consumers, WaitStrategy::Spin).unwrap());
        let pool = PoolAllocator::new(PoolConfig::default());
        pool.set_poison_on_free(Some(POISON));
        let producer = ring.producer();
        let mut laggards: Vec<Laggard> = (0..consumers)
            .map(|slot| {
                let mut consumer = ring.consumer(slot).unwrap();
                consumer.enable_lap_gate();
                Laggard { consumer, staged: VecDeque::new(), lap_target: 0 }
            })
            .collect();
        let mut payload_window: VecDeque<(u64, SharedRegion)> = VecDeque::new();
        let mut scratch: Vec<Event> = Vec::new();
        let mut next_seq = 0u64;

        for (kind, amount) in ops {
            match kind {
                // Publish up to `amount` payload events, then retire regions
                // below the reclamation horizon (poisoning them).
                0 => {
                    for _ in 0..amount {
                        let full = (0..consumers)
                            .any(|i| ring.backlog(i).unwrap_or(0) >= CAPACITY as u64);
                        if full {
                            break;
                        }
                        let region = pool
                            .alloc_and_write(&[fill_for(next_seq); PAYLOAD])
                            .unwrap();
                        let event = Event::syscall(7, &[next_seq], 0).with_shared(region.ptr());
                        let seq = producer.publish_signed(event, event.signature());
                        prop_assert_eq!(seq, next_seq);
                        payload_window.push_back((seq, region));
                        next_seq += 1;
                        let horizon = producer.refresh_reclaim_horizon();
                        while payload_window.front().is_some_and(|&(s, _)| s < horizon) {
                            let (_, region) = payload_window.pop_front().unwrap();
                            pool.free(region).unwrap();
                        }
                    }
                }
                // Drain round for one consumer: peek a bounded batch, stage
                // the payload pointers, advance the gate immediately.
                1 | 2 => {
                    let lag = &mut laggards[(kind as usize + amount) % consumers];
                    scratch.clear();
                    let base = lag.consumer.next_sequence();
                    let peeked = lag.consumer.peek_batch(&mut scratch, amount.min(CAPACITY / 2));
                    for (i, event) in scratch.iter().enumerate() {
                        lag.staged.push_back((base + i as u64, event.shared()));
                    }
                    if peeked > 0 {
                        lag.consumer.advance(peeked);
                    }
                }
                // Replay round: pop staged events, read their payloads
                // directly out of the pool and check every byte, then move
                // the lap counter past the replayed prefix.
                _ => {
                    let lag = &mut laggards[(kind as usize + amount) % consumers];
                    for _ in 0..amount {
                        let Some((seq, ptr)) = lag.staged.pop_front() else { break };
                        let expected = fill_for(seq);
                        let intact = pool.read_with(ptr, |bytes| {
                            bytes.len() == PAYLOAD && bytes.iter().all(|&b| b == expected)
                        });
                        prop_assert!(
                            intact,
                            "seq {} read a torn or recycled payload (expected fill {:#x})",
                            seq,
                            expected
                        );
                        lag.lap_target = seq + 1;
                    }
                    lag.consumer.advance_lap_to(lag.lap_target.max(lag.consumer.lap()));
                }
            }
        }

        // Drain and replay everything still in flight; every payload must
        // still be intact (nothing below any laggard's lap was recycled).
        for lag in &mut laggards {
            loop {
                scratch.clear();
                let base = lag.consumer.next_sequence();
                let peeked = lag.consumer.peek_batch(&mut scratch, CAPACITY / 2);
                for (i, event) in scratch.iter().enumerate() {
                    lag.staged.push_back((base + i as u64, event.shared()));
                }
                if peeked == 0 {
                    break;
                }
                lag.consumer.advance(peeked);
            }
            while let Some((seq, ptr)) = lag.staged.pop_front() {
                let expected = fill_for(seq);
                let intact =
                    pool.read_with(ptr, |bytes| bytes.iter().all(|&b| b == expected));
                prop_assert!(intact, "seq {} read a recycled payload at shutdown", seq);
            }
        }
    }

    /// The incrementally maintained batch fold (leader side) equals the
    /// fold of per-event signatures recomputed by a consumer from the
    /// signature lane — and from the events themselves.
    #[test]
    fn incremental_batch_hash_equals_fold_of_per_event_hashes(
        specs in proptest::collection::vec(
            (0u16..512u16, proptest::collection::vec(any::<u64>(), 0..4), any::<i64>()),
            1..64,
        ),
    ) {
        let ring: Arc<RingBuffer<Event>> =
            Arc::new(RingBuffer::new(128, 1, WaitStrategy::Spin).unwrap());
        let producer = ring.producer();
        let mut consumer = ring.consumer(0).unwrap();

        // Leader: publish each event, folding its signature incrementally.
        let mut running = SIGNATURE_FOLD_SEED;
        for (sysno, args, result) in &specs {
            let event = Event::syscall(*sysno, args, *result);
            running = fold_signature(running, event.signature());
            producer.publish_signed(event, event.signature());
        }

        // Consumer: fold the signature lane while gated, and the per-event
        // signatures independently; all three folds must agree.
        let base = consumer.next_sequence();
        let mut events = Vec::new();
        let peeked = consumer.peek_batch(&mut events, usize::MAX);
        prop_assert_eq!(peeked, specs.len());
        let mut lane_fold = SIGNATURE_FOLD_SEED;
        let mut event_fold = SIGNATURE_FOLD_SEED;
        for (i, event) in events.iter().enumerate() {
            lane_fold = fold_signature(lane_fold, consumer.sig_at(base + i as u64));
            event_fold = fold_signature(event_fold, event.signature());
        }
        consumer.advance(peeked);
        prop_assert_eq!(lane_fold, running);
        prop_assert_eq!(event_fold, running);
    }
}
