//! Property-based integrity tests for the seqlock-backed ring slots.
//!
//! The slot storage contract (§3.3.1, DESIGN.md substitution table): under
//! concurrent multi-producer publication and multi-consumer batched
//! draining, every consumer observes the *exact* published sequence — same
//! events, same order, and never a torn 64-byte event (one whose fields mix
//! two different writes).
//!
//! Torn reads are made observable by deriving every field of the event from
//! a single seed: any event whose fields disagree about the seed must have
//! been stitched together from two stores.

use std::sync::Arc;

use proptest::prelude::*;

use varan_ring::{Event, RingBuffer, WaitStrategy};

/// Builds a 64-byte event whose every field is derived from `seed`, so a
/// torn read is detectable by cross-checking the fields.
fn sealed_event(seed: u64) -> Event {
    Event::syscall(
        (seed % 311) as u16,
        &[
            seed,
            seed ^ 0xdead_beef_cafe_f00d,
            seed.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            !seed,
        ],
        seed as i64,
    )
    .with_clock(seed)
    .with_tid((seed % 7) as u32)
}

/// Recovers the seed and panics if any field disagrees with it.
fn check_sealed(event: &Event) -> u64 {
    let seed = event.args()[0];
    assert_eq!(
        event.args()[1],
        seed ^ 0xdead_beef_cafe_f00d,
        "torn event: args[1] mixes another write (seed {seed})"
    );
    assert_eq!(
        event.args()[2],
        seed.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        "torn event: args[2] mixes another write (seed {seed})"
    );
    assert_eq!(
        event.args()[3],
        !seed,
        "torn event: args[3] mixes another write (seed {seed})"
    );
    assert_eq!(event.sysno(), (seed % 311) as u16, "torn event: sysno");
    assert_eq!(event.result(), seed as i64, "torn event: result");
    assert_eq!(event.clock(), seed, "torn event: clock");
    assert_eq!(event.tid(), (seed % 7) as u32, "torn event: tid");
    seed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Concurrent multi-producer publish + multi-consumer batched drain:
    /// every consumer sees the exact same untorn sequence, and the
    /// sequence is a valid interleaving of every producer's stream.
    #[test]
    fn concurrent_publish_and_drain_never_tear_events(
        capacity_pow in 3u32..8,
        producers in 1usize..4,
        consumers in 1usize..4,
        events_per_producer in 50u64..400,
    ) {
        let capacity = 1usize << capacity_pow;
        let ring = Arc::new(
            RingBuffer::<Event>::new(capacity, consumers, WaitStrategy::Yield).unwrap(),
        );
        let total = producers as u64 * events_per_producer;

        let consumer_handles: Vec<_> = (0..consumers)
            .map(|slot| {
                let mut consumer = ring.consumer(slot).unwrap();
                std::thread::spawn(move || {
                    let mut seen = Vec::with_capacity(total as usize);
                    let mut batch = Vec::new();
                    while (seen.len() as u64) < total {
                        batch.clear();
                        if consumer.try_next_batch(&mut batch, usize::MAX) == 0 {
                            std::thread::yield_now();
                            continue;
                        }
                        for event in &batch {
                            seen.push(check_sealed(event));
                        }
                    }
                    seen
                })
            })
            .collect();

        let producer_handles: Vec<_> = (0..producers as u64)
            .map(|p| {
                let producer = ring.producer();
                std::thread::spawn(move || {
                    for i in 0..events_per_producer {
                        // Seeds are globally unique across producers.
                        producer.publish(sealed_event(p * 1_000_000 + i));
                    }
                })
            })
            .collect();
        for handle in producer_handles {
            handle.join().unwrap();
        }

        let streams: Vec<Vec<u64>> = consumer_handles
            .into_iter()
            .map(|handle| handle.join().unwrap())
            .collect();

        // Every consumer saw the published stream in the identical global
        // (cursor) order...
        for window in streams.windows(2) {
            prop_assert_eq!(&window[0], &window[1]);
        }
        // ...containing each producer's events in program order...
        let stream = &streams[0];
        for p in 0..producers as u64 {
            let per_producer: Vec<u64> = stream
                .iter()
                .copied()
                .filter(|seed| seed / 1_000_000 == p)
                .collect();
            let expected: Vec<u64> =
                (0..events_per_producer).map(|i| p * 1_000_000 + i).collect();
            prop_assert_eq!(per_producer, expected);
        }
        // ...and nothing else.
        prop_assert_eq!(stream.len() as u64, total);
        prop_assert_eq!(ring.published(), total);
    }

    /// A batched drain advances the gating sequence in one step: a producer
    /// blocked on a full ring gets a whole ring's worth of space back from a
    /// single drain call.
    #[test]
    fn batched_drain_frees_producer_space(
        capacity_pow in 2u32..7,
        laps in 1u64..5,
    ) {
        let capacity = 1u64 << capacity_pow;
        let ring = Arc::new(
            RingBuffer::<Event>::new(capacity as usize, 1, WaitStrategy::Spin).unwrap(),
        );
        let producer = ring.producer();
        let mut consumer = ring.consumer(0).unwrap();
        let mut batch = Vec::new();
        for lap in 0..laps {
            // Fill the ring completely; one more publish must fail.
            for i in 0..capacity {
                prop_assert!(producer
                    .try_publish(sealed_event(lap * capacity + i))
                    .is_ok());
            }
            prop_assert!(producer.try_publish(sealed_event(u64::MAX / 2)).is_err());
            // One drain -> one gating advance -> a full ring of free space.
            batch.clear();
            prop_assert_eq!(consumer.drain(&mut batch) as u64, capacity);
            for (i, event) in batch.iter().enumerate() {
                prop_assert_eq!(check_sealed(event), lap * capacity + i as u64);
            }
        }
        prop_assert_eq!(ring.published(), laps * capacity);
    }
}
