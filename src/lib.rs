//! # varan — an N-version execution framework (reproduction)
//!
//! This umbrella crate re-exports the crates that make up the from-scratch
//! Rust reproduction of *"Varan the Unbelievable: An Efficient N-version
//! Execution Framework"* (Hosek & Cadar, ASPLOS 2015) and hosts the runnable
//! examples and the cross-crate integration tests.
//!
//! * [`core`] — the framework itself: coordinator, zygote, leader/follower
//!   monitors, event streaming, system call tables, rewrite rules,
//!   transparent failover, live sanitization, record-replay, the elastic
//!   fleet and the live-upgrade pipeline.
//! * [`ring`] — the shared ring buffer, waitlocks, Lamport clocks, the
//!   shared-memory pool allocator and the spill-to-disk event journal.
//! * [`rewrite`] — selective binary rewriting of system-call sites and vDSO
//!   entry points.
//! * [`bpf`] — the BPF virtual machine, verifier and assembler used for
//!   system-call sequence rewrite rules.
//! * [`kernel`] — the virtual OS substrate the reproduction runs on (see
//!   `DESIGN.md` for the substitution argument).
//! * [`apps`] — miniature server applications, client workloads and
//!   SPEC-like CPU kernels.
//! * [`baselines`] — prior-work lock-step and record-replay baselines used
//!   by the comparison experiments.
//! * [`sim`] — the deterministic simulation harness: seeded fault plans,
//!   virtual-time scheduling and interleaving exploration over the fleet,
//!   failover and live-upgrade machinery (see `docs/SIMULATION.md`).
//!
//! # Quick start
//!
//! ```
//! use varan::core::coordinator::{run_nvx, NvxConfig};
//! use varan::core::program::{ProgramExit, SyscallInterface, VersionProgram};
//! use varan::kernel::Kernel;
//!
//! struct Hello;
//! impl VersionProgram for Hello {
//!     fn name(&self) -> String {
//!         "hello".into()
//!     }
//!     fn run(&mut self, sys: &mut dyn SyscallInterface) -> ProgramExit {
//!         sys.write(1, b"hello\n");
//!         ProgramExit::Exited(0)
//!     }
//! }
//!
//! # fn main() -> Result<(), varan::core::CoreError> {
//! let kernel = Kernel::new();
//! let report = run_nvx(&kernel, vec![Box::new(Hello), Box::new(Hello)], NvxConfig::default())?;
//! assert!(report.all_clean());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use varan_apps as apps;
pub use varan_baselines as baselines;
pub use varan_bpf as bpf;
pub use varan_core as core;
pub use varan_kernel as kernel;
pub use varan_rewrite as rewrite;
pub use varan_ring as ring;
pub use varan_sim as sim;
