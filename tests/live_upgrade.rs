//! End-to-end test of the live-upgrade pipeline: a multi-hop upgrade chain
//! over a running execution, with bad revisions that must be rolled back
//! automatically while the original fleet keeps running.
//!
//! The chain walked here: rev-a (launched leader) → rev-b (identical
//! behaviour, promoted) → rev-crash (deterministic crash during replay,
//! rolled back) → rev-divergent (unruled extra syscall, killed by the
//! divergence check and rolled back) → rev-c (benign extra syscall covered
//! by scoped rewrite rules, promoted).

use std::time::Duration;

use varan::core::coordinator::{NvxConfig, NvxSystem};
use varan::core::fleet::FleetConfig;
use varan::core::program::{ProgramExit, SyscallInterface, VersionProgram};
use varan::core::upgrade::{
    RollbackReason, StageOutcome, UpgradeConfig, UpgradeOrchestrator, UpgradeStep,
};
use varan::core::RuleEngine;
use varan::kernel::syscall::SyscallRequest;
use varan::kernel::{Kernel, Sysno};

/// A self-driving service revision: every iteration issues a fixed syscall
/// mix, with per-revision quirks that model the §2.3 divergence classes.
struct Service {
    revision: String,
    iterations: u32,
    /// Issue an extra `getuid` before each `getegid` (rev-c's new check).
    extra_getuid: bool,
    /// Issue an unruled extra `open` each iteration (the divergent rev).
    extra_open: bool,
    /// Crash (SIGSEGV) at this iteration (the crashing rev).
    crash_at: Option<u32>,
}

impl Service {
    fn new(revision: &str, iterations: u32) -> Self {
        Service {
            revision: revision.to_owned(),
            iterations,
            extra_getuid: false,
            extra_open: false,
            crash_at: None,
        }
    }
}

impl VersionProgram for Service {
    fn name(&self) -> String {
        format!("service-{}", self.revision)
    }

    fn run(&mut self, sys: &mut dyn SyscallInterface) -> ProgramExit {
        let fd = sys.open("/dev/zero", 0);
        for i in 0..self.iterations {
            if Some(i) == self.crash_at {
                return ProgramExit::Crashed(varan::kernel::signal::Signal::Sigsegv);
            }
            if self.extra_open {
                sys.open("/tmp/divergent", 0);
            }
            if self.extra_getuid {
                sys.syscall(&SyscallRequest::new(Sysno::Getuid, [0; 6]));
            }
            sys.syscall(&SyscallRequest::new(Sysno::Getegid, [0; 6]));
            sys.read(fd as i32, 64);
            sys.time();
            // Pace the service on wall time so the run spans the whole
            // upgrade chain in release builds too (an un-paced release
            // leader finishes the entire workload before the later hops
            // can canary and soak).  Followers replay the same program, so
            // the pacing never desynchronizes the streams.
            if i % 2048 == 0 {
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        sys.close(fd as i32);
        sys.exit(0);
        ProgramExit::Exited(0)
    }
}

fn journal_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("varan-upgrade-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The removal rule every *old* revision needs once rev-c leads: skip the
/// leader's extra `getuid` when the follower's next call is `getegid`.
fn skip_new_getuid() -> RuleEngine {
    let mut rules = RuleEngine::new();
    rules
        .allow_skipped_call(
            "skip-revc-getuid",
            Sysno::Getuid.number(),
            Sysno::Getegid.number(),
        )
        .unwrap();
    rules
}

/// The addition rule rev-c needs while replaying an old revision's stream:
/// its extra `getuid` is allowed when the leader's next event is `getegid`.
fn allow_new_getuid() -> RuleEngine {
    let mut rules = RuleEngine::new();
    rules
        .allow_extra_call(
            "allow-revc-getuid",
            Sysno::Getuid.number(),
            Sysno::Getegid.number(),
        )
        .unwrap();
    rules
}

#[test]
fn upgrade_chain_promotes_good_revisions_and_rolls_back_bad_ones() {
    const ITERATIONS: u32 = 150_000;

    let kernel = Kernel::new();
    let dir = journal_dir("chain");
    // The launched fleet: a single leader (rev-a). Old revisions fall back
    // to the default rule set, which already knows how to skip rev-c's
    // extra getuid once rev-c leads.
    let config = NvxConfig::default()
        .with_rules(skip_new_getuid())
        .with_fleet(FleetConfig::for_upgrades(&dir, 4));
    let versions: Vec<Box<dyn VersionProgram>> = vec![Box::new(Service::new("a", ITERATIONS))];
    let running = NvxSystem::launch(&kernel, versions, config).expect("launch");
    let fleet = running.fleet().expect("fleet enabled");

    let orchestrator = UpgradeOrchestrator::new(
        fleet.clone(),
        UpgradeConfig {
            soak_events: 64,
            ..UpgradeConfig::default()
        },
    );

    let mut crashing = Service::new("crash", ITERATIONS);
    crashing.crash_at = Some(40);
    let mut divergent = Service::new("divergent", ITERATIONS);
    divergent.extra_open = true;
    let mut revc = Service::new("c", ITERATIONS);
    revc.extra_getuid = true;

    let chain = vec![
        UpgradeStep::new(Box::new(Service::new("b", ITERATIONS))),
        UpgradeStep::new(Box::new(crashing)),
        UpgradeStep::new(Box::new(divergent)),
        UpgradeStep::new(Box::new(revc))
            .with_candidate_rules(allow_new_getuid())
            .with_retiree_rules(skip_new_getuid()),
    ];
    let upgrade_report = orchestrator.run_chain(chain);

    // Hop outcomes: b and c promoted, the crash and divergence rolled back.
    assert_eq!(upgrade_report.stages.len(), 4);
    assert!(
        upgrade_report.stages[0].promoted(),
        "rev-b: {:?}",
        upgrade_report.stages[0]
    );
    match &upgrade_report.stages[1].outcome {
        StageOutcome::RolledBack(RollbackReason::CandidateFailed(reason)) => {
            assert!(reason.contains("crashed"), "unexpected failure: {reason}");
        }
        other => panic!("rev-crash should crash during replay, got {other:?}"),
    }
    match &upgrade_report.stages[2].outcome {
        StageOutcome::RolledBack(RollbackReason::CandidateFailed(reason)) => {
            assert!(reason.contains("killed"), "unexpected failure: {reason}");
        }
        other => panic!("rev-divergent should be killed by the divergence check, got {other:?}"),
    }
    assert!(
        upgrade_report.stages[3].promoted(),
        "rev-c: {:?}",
        upgrade_report.stages[3]
    );
    assert_eq!(upgrade_report.promoted(), 2);
    assert_eq!(upgrade_report.rolled_back(), 2);

    // Leadership ended on rev-c.
    assert_eq!(
        Some(upgrade_report.final_leader),
        upgrade_report.stages[3].candidate_index,
    );
    assert_eq!(fleet.current_leader_index(), upgrade_report.final_leader);

    // rev-c's extra getuid calls were allowed by its scoped addition rules
    // while it replayed the old stream.
    assert!(
        upgrade_report.stages[3].divergences_allowed > 0,
        "rev-c replayed an old revision's stream through its scoped rules"
    );

    let report = running.wait();
    assert!(report.all_clean(), "exits: {:?}", report.exits);

    // The launched rev-a survived both handovers as a follower and exited
    // cleanly; its divergences against rev-c's stream were skipped by the
    // default removal rule.
    assert!(
        report.versions[0].divergences_allowed > 0,
        "rev-a skipped rev-c's extra getuid events: {:?}",
        report.versions[0]
    );
    assert_eq!(report.versions[0].divergences_killed, 0);

    // Member bookkeeping: promoted revisions ran to clean exits, bad ones
    // recorded their failures.
    let members = fleet.version_members();
    assert_eq!(members.len(), 4);
    assert_eq!(members[0].exit().as_deref(), Some("exited(0)"), "rev-b");
    assert!(members[1].failure().is_some(), "rev-crash failed");
    assert!(members[2].failure().is_some(), "rev-divergent failed");
    assert_eq!(members[3].exit().as_deref(), Some("exited(0)"), "rev-c");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_of_a_promoted_candidate_fails_over_to_the_retired_leader() {
    const ITERATIONS: u32 = 120_000;

    let kernel = Kernel::new();
    let dir = journal_dir("late-crash");
    let config = NvxConfig::default().with_fleet(FleetConfig::for_upgrades(&dir, 3));
    let versions: Vec<Box<dyn VersionProgram>> = vec![Box::new(Service::new("a", ITERATIONS))];
    let running = NvxSystem::launch(&kernel, versions, config).expect("launch");
    let fleet = running.fleet().expect("fleet enabled");
    let orchestrator = UpgradeOrchestrator::new(
        fleet.clone(),
        UpgradeConfig {
            soak_events: 64,
            ..UpgradeConfig::default()
        },
    );

    // The candidate soaks clean and is promoted, then hits its crash bug
    // much later, while *leading*.  The retired original leader — still
    // attached as a follower — must take leadership back, so the run
    // completes cleanly.
    let mut late_crash = Service::new("late-crash", ITERATIONS);
    late_crash.crash_at = Some(100_000);
    let stage = orchestrator.upgrade(UpgradeStep::new(Box::new(late_crash)));
    assert!(stage.promoted(), "stage: {stage:?}");

    let report = running.wait();
    assert!(report.all_clean(), "exits: {:?}", report.exits);
    assert_eq!(
        fleet.current_leader_index(),
        0,
        "leadership rolled back to the retired original leader"
    );
    // The re-promoted leader restarted its interrupted call (§3.2/§5.1).
    assert!(report.versions[0].restarts >= 1, "{:?}", report.versions[0]);
    let members = fleet.version_members();
    assert!(
        members[0]
            .failure()
            .map(|failure| failure.0.contains("crashed"))
            .unwrap_or(false),
        "the crashed ex-leader recorded its failure: {:?}",
        members[0].failure()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rolled_back_upgrade_leaves_the_original_fleet_intact() {
    const ITERATIONS: u32 = 40_000;

    let kernel = Kernel::new();
    let dir = journal_dir("rollback");
    let config = NvxConfig::default().with_fleet(FleetConfig::for_upgrades(&dir, 2));
    let versions: Vec<Box<dyn VersionProgram>> = vec![
        Box::new(Service::new("leader", ITERATIONS)),
        Box::new(Service::new("follower", ITERATIONS)),
    ];
    let running = NvxSystem::launch(&kernel, versions, config).expect("launch");
    let fleet = running.fleet().expect("fleet enabled");
    let orchestrator = UpgradeOrchestrator::new(
        fleet.clone(),
        UpgradeConfig {
            soak_events: 32,
            ..UpgradeConfig::default()
        },
    );

    let mut crashing = Service::new("bad", ITERATIONS);
    crashing.crash_at = Some(25);
    let stage = orchestrator.upgrade(UpgradeStep::new(Box::new(crashing)));
    assert!(!stage.promoted(), "bad revision must not be promoted");

    // Leadership never moved and the fleet still has its spare slots once
    // the candidate's thread returned them.
    assert_eq!(fleet.current_leader_index(), 0);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while fleet.available_spares() < 2 && std::time::Instant::now() < deadline {
        std::thread::yield_now();
    }
    assert_eq!(fleet.available_spares(), 2, "candidate slot returned");
    assert_eq!(fleet.scoped_rules().scoped_count(), 0, "scoped rules removed");

    let report = running.wait();
    assert!(report.all_clean(), "exits: {:?}", report.exits);
    assert_eq!(report.promotions, 0);
    std::fs::remove_dir_all(&dir).ok();
}
