//! Smoke tests for the workspace wiring itself: the umbrella crate's
//! re-exports must resolve to the member crates, and the shortest possible
//! N-version execution must round-trip through them.

use varan::core::coordinator::{run_nvx, NvxConfig};
use varan::core::program::{ProgramExit, SyscallInterface, VersionProgram};
use varan::kernel::Kernel;

/// Every umbrella re-export resolves and exposes a usable entry point.
#[test]
fn umbrella_reexports_resolve() {
    // varan::kernel
    let kernel: varan::kernel::Kernel = Kernel::new();
    let pid = kernel.spawn_process("smoke");
    assert!(kernel.process_alive(pid));

    // varan::ring
    let ring: varan::ring::RingBuffer<varan::ring::Event> =
        varan::ring::RingBuffer::new(16, 1, varan::ring::WaitStrategy::Spin).unwrap();
    assert_eq!(ring.capacity(), 16);

    // varan::bpf
    let program = varan::bpf::asm::assemble("ret #0x7fff0000\n").unwrap();
    assert!(!program.is_empty());

    // varan::rewrite
    let segment = varan::rewrite::CodeSegment::new(0x40_0000, vec![0x90; 16]);
    assert_eq!(segment.len(), 16);

    // varan::apps
    let config = varan::apps::servers::ServerConfig::on_port(26_001);
    assert_eq!(config.port, 26_001);

    // varan::baselines
    let costs = varan::baselines::presets::InterpositionCosts::ptrace();
    assert!(costs.per_call(0, false) > 0);

    // varan::core
    let nvx_config: NvxConfig = varan::core::coordinator::NvxConfig::default();
    assert!(nvx_config.ring_capacity > 0);
}

struct Greeter;

impl VersionProgram for Greeter {
    fn name(&self) -> String {
        "workspace-smoke".to_owned()
    }

    fn run(&mut self, sys: &mut dyn SyscallInterface) -> ProgramExit {
        sys.write(1, b"hello from the workspace smoke test\n");
        sys.exit(0);
        ProgramExit::Exited(0)
    }
}

/// A two-version run through the full stack exits cleanly: the leader
/// executes, the follower replays, and the report reflects both.
#[test]
fn two_version_round_trip_exits_cleanly() {
    let kernel = Kernel::new();
    let report = run_nvx(
        &kernel,
        vec![Box::new(Greeter), Box::new(Greeter)],
        NvxConfig::default(),
    )
    .unwrap();
    assert!(report.all_clean(), "exits: {:?}", report.exits);
    assert_eq!(report.versions.len(), 2);
    assert_eq!(report.promotions, 0);
    assert!(report.events_published >= 2, "write + exit must be streamed");
    assert_eq!(
        report.versions[0].events, report.versions[1].events,
        "the follower must consume exactly what the leader published"
    );
}
