//! Property-based tests over the core data structures, spanning crates.

use proptest::prelude::*;

use varan::bpf::asm::assemble;
use varan::bpf::seccomp::{RetValue, SeccompData};
use varan::bpf::vm::{FilterContext, Vm};
use varan::core::record_replay::{LogEntry, RecordLog};
use varan::kernel::syscall::SyscallRequest;
use varan::kernel::{Kernel, Sysno};
use varan::rewrite::asm::{synthetic_function, SyscallSlot};
use varan::rewrite::patcher::{PatchConfig, Patcher};
use varan::rewrite::scanner;
use varan::rewrite::CodeSegment;
use varan::ring::{Event, PoolAllocator, RingBuffer, WaitStrategy};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Everything published into the ring is consumed exactly once, in order,
    /// whatever the capacity and batch size.
    #[test]
    fn ring_buffer_preserves_order(
        capacity_pow in 2u32..8,
        values in proptest::collection::vec(any::<u64>(), 1..200),
    ) {
        let capacity = 1usize << capacity_pow;
        let ring = std::sync::Arc::new(
            RingBuffer::<Event>::new(capacity, 1, WaitStrategy::Yield).unwrap(),
        );
        let producer = ring.producer();
        let mut consumer = ring.consumer(0).unwrap();
        let expected = values.clone();
        let handle = std::thread::spawn(move || {
            expected
                .iter()
                .map(|_| consumer.next_blocking().args()[0])
                .collect::<Vec<u64>>()
        });
        for value in &values {
            producer.publish(Event::checkpoint(*value));
        }
        let seen = handle.join().unwrap();
        prop_assert_eq!(seen, values);
    }

    /// Pool allocations never alias: concurrent-looking interleavings of
    /// allocate/write/read/free round-trip every payload.
    #[test]
    fn pool_allocator_round_trips_disjoint_payloads(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..2048), 1..40),
    ) {
        let pool = PoolAllocator::default();
        let regions: Vec<_> = payloads
            .iter()
            .map(|payload| pool.alloc_and_write(payload).unwrap())
            .collect();
        for (region, payload) in regions.iter().zip(payloads.iter()) {
            prop_assert_eq!(&pool.read(region.ptr()), payload);
        }
        for region in regions {
            pool.free(region).unwrap();
        }
        prop_assert_eq!(pool.stats().live_chunks, 0);
    }

    /// The binary rewriter never leaves a system-call instruction behind and
    /// never changes the segment length, for any mix of syscall sites.
    #[test]
    fn patcher_removes_every_syscall_site(
        numbers in proptest::collection::vec(0u32..400, 1..12),
        filler in 0usize..6,
    ) {
        let slots: Vec<SyscallSlot> = numbers
            .iter()
            .enumerate()
            .map(|(index, &number)| SyscallSlot { number, legacy: index % 4 == 3 })
            .collect();
        let code = synthetic_function(&slots, filler);
        let segment = CodeSegment::new(0x40_0000, code);
        let sites_before = scanner::scan(&segment).unwrap().site_count();
        prop_assert_eq!(sites_before, slots.len());

        let outcome = Patcher::new(PatchConfig::default()).rewrite(&segment).unwrap();
        prop_assert_eq!(outcome.patched.len(), segment.len());
        prop_assert_eq!(outcome.remaining_syscalls(), 0);
        outcome.verify().unwrap();
    }

    /// The record-replay log encoding is lossless for arbitrary entries.
    #[test]
    fn record_log_encoding_round_trips(
        entries in proptest::collection::vec(
            (any::<u16>(), proptest::collection::vec(any::<u64>(), 6), any::<i64>(),
             proptest::option::of(proptest::collection::vec(any::<u8>(), 0..512))),
            0..50,
        ),
    ) {
        let mut log = RecordLog::new();
        for (sysno, args, result, payload) in entries {
            let mut fixed = [0u64; 6];
            fixed.copy_from_slice(&args);
            log.push(LogEntry { sysno, args: fixed, result, payload });
        }
        let decoded = RecordLog::decode(&log.encode()).unwrap();
        prop_assert_eq!(decoded, log);
    }

    /// Generated "allow extra call" BPF rules always verify and always return
    /// a decodable verdict.
    #[test]
    fn generated_bpf_rules_always_verify(extra in 0u16..400, leader in 0u16..400, probe in 0i32..400) {
        let source = format!(
            "ld event[0]\n jeq #{leader}, check\n jmp bad\ncheck: ld [0]\n jeq #{extra}, good\nbad: ret #0\ngood: ret #0x7fff0000\n"
        );
        let program = assemble(&source).unwrap();
        let vm = Vm::new(&program).unwrap();
        let context = FilterContext::new(SeccompData::for_syscall(probe, &[]))
            .with_leader_events(vec![u32::from(leader)]);
        let verdict = RetValue::decode(vm.run(&context).unwrap());
        if probe == i32::from(extra) {
            prop_assert_eq!(verdict, RetValue::Allow);
        } else {
            prop_assert_eq!(verdict, RetValue::Kill);
        }
    }

    /// The connection→shard map is a pure function of `(sysno, args[0])`:
    /// payload bytes, the remaining argument registers and the (not yet
    /// known) result never move a call to a different shard, so the leader
    /// at capture time and every follower at replay time always agree.
    #[test]
    fn shard_assignment_agrees_across_leader_and_followers(
        fd in 0u64..4096,
        shards in 1usize..16,
        noise in proptest::collection::vec(any::<u64>(), 5),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        use varan::core::shard_of;
        use varan::kernel::shard::{connection_key, names_descriptor};
        use varan::ring::shard::shard_for_key;

        let keyed = [
            Sysno::Read, Sysno::Write, Sysno::Close, Sysno::Fstat, Sysno::Lseek,
            Sysno::Ioctl, Sysno::Sendto, Sysno::Recvfrom, Sysno::Shutdown,
            Sysno::Bind, Sysno::Listen, Sysno::Connect, Sysno::Accept,
            Sysno::Accept4, Sysno::Fcntl, Sysno::Fsync,
        ];
        for sysno in keyed {
            prop_assert!(names_descriptor(sysno));
            let mut args = [0u64; 6];
            args[0] = fd;
            args[1..6].copy_from_slice(&noise);
            let leader_view = SyscallRequest::new(sysno, args);
            // The follower replays the same registers but may see different
            // payload bytes attached (e.g. a write's data region).
            let mut follower_view = SyscallRequest::new(sysno, args);
            follower_view.data = Some(payload.clone());
            prop_assert_eq!(connection_key(&leader_view), Some(fd));
            let shard = shard_of(&leader_view, shards);
            prop_assert!(shard < shards.max(1));
            prop_assert_eq!(shard, shard_of(&follower_view, shards));
            prop_assert_eq!(shard, shard_for_key(fd, shards));
        }
        // Key-less calls always land on the control shard, whatever their
        // argument registers claim.
        for sysno in [Sysno::Time, Sysno::Getegid, Sysno::Open, Sysno::Socket, Sysno::Exit] {
            prop_assert!(!names_descriptor(sysno));
            let mut args = [0u64; 6];
            args[0] = fd;
            let request = SyscallRequest::new(sysno, args);
            prop_assert_eq!(connection_key(&request), None);
            prop_assert_eq!(shard_of(&request, shards), 0);
        }
    }

    /// A kernel checkpoint taken at a consistent cut survives the
    /// encode/decode/restore round-trip with the connection→shard
    /// assignment intact: every descriptor is reinstalled at its original
    /// number, so each connection keys to exactly the shard it occupied
    /// before the checkpoint, and the cut vector itself is preserved.
    #[test]
    fn checkpoint_restore_preserves_the_shard_assignment(
        opens in 1usize..12,
        shards in 2usize..8,
        cut in proptest::collection::vec(any::<u64>(), 1..8),
    ) {
        use std::collections::HashMap;
        use varan::core::shard_of;
        use varan::kernel::checkpoint::KernelCheckpoint;

        let kernel = Kernel::new();
        let leader = kernel.spawn_process("leader");
        let mut fds = Vec::new();
        for _ in 0..opens {
            let outcome = kernel.syscall(leader, &SyscallRequest::open_read("/dev/null"));
            prop_assert!(outcome.result >= 0);
            fds.push(outcome.result);
        }
        let before: Vec<usize> = fds
            .iter()
            .map(|&fd| shard_of(&SyscallRequest::read(fd as i32, 16), shards))
            .collect();

        let checkpoint = kernel
            .checkpoint_at_cut(leader, &cut, &HashMap::new())
            .unwrap();
        let decoded = KernelCheckpoint::decode(&checkpoint.encode()).unwrap();
        prop_assert_eq!(&decoded.shard_cut, &cut);
        prop_assert_eq!(decoded.cut_vector(), cut.clone());

        let joiner = kernel.spawn_process("joiner");
        let translation = kernel.restore_process(&decoded, joiner).unwrap();
        for (&fd, &shard) in fds.iter().zip(before.iter()) {
            let installed = *translation
                .get(&fd)
                .unwrap_or_else(|| panic!("descriptor {fd} lost in restore"));
            prop_assert_eq!(
                shard_of(&SyscallRequest::read(installed, 16), shards),
                shard,
                "descriptor {} moved shards across checkpoint/restore", fd
            );
        }
    }

    /// Per-shard journal lanes survive anchor-aligned compaction with
    /// byte-identical replay: each shard gets its own anchor (a consistent
    /// cut is per-shard, not global) and its stream digest from the anchor
    /// is unchanged by compacting the straddling segment.
    #[test]
    fn per_shard_compaction_preserves_stream_digests(
        shard_lens in proptest::collection::vec(3u64..40, 2..4),
        anchor_picks in proptest::collection::vec(any::<u64>(), 2..4),
        segment_records in 2usize..8,
    ) {
        use varan::core::shard::shard_journal_digest;
        use varan::ring::journal::JournalRecord;
        use varan::ring::{EventJournal, EventKind, JournalConfig};

        let dir = std::env::temp_dir().join(format!(
            "varan-shard-compact-{}-{}",
            std::process::id(),
            shard_lens[0] ^ (segment_records as u64) << 32,
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let shards = shard_lens.len().min(anchor_picks.len());
        for shard in 0..shards {
            // One journal lane per shard in the same directory
            // (`seg-<shard>-*.vrj`), as the sharded plane lays them out.
            let journal = EventJournal::open(
                JournalConfig::new(&dir)
                    .with_shard(shard as u32)
                    .with_segment_records(segment_records),
            )
            .unwrap();
            for seq in 0..shard_lens[shard] {
                journal
                    .append(JournalRecord {
                        kind: EventKind::Syscall,
                        sysno: (seq % 300) as u16,
                        tid: shard as u32,
                        clock: seq.wrapping_mul(0x9e37_79b9),
                        result: seq as i64,
                        args: [seq, seq + 1, seq + 2, seq + 3, seq + 4, seq + 5],
                        payload: (seq % 3 == 0).then(|| vec![seq as u8; (seq % 9) as usize]),
                    })
                    .unwrap();
            }
            let anchor = anchor_picks[shard] % (shard_lens[shard] + 1);
            journal.set_anchor(anchor);
            let before = shard_journal_digest(&journal, anchor).unwrap();
            journal.compact_to_anchor().unwrap();
            let after = shard_journal_digest(&journal, anchor).unwrap();
            prop_assert_eq!(before, after, "shard {} digest changed", shard);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The virtual kernel's file descriptors are process-isolated: a
    /// descriptor opened in one process is never valid in another.
    #[test]
    fn kernel_descriptors_are_per_process(opens in 1usize..20) {
        let kernel = Kernel::new();
        let first = kernel.spawn_process("first");
        let second = kernel.spawn_process("second");
        let mut last_fd = -1;
        for _ in 0..opens {
            let outcome = kernel.syscall(first, &SyscallRequest::open_read("/dev/null"));
            prop_assert!(outcome.result >= 3);
            last_fd = outcome.result as i32;
        }
        let foreign = kernel.syscall(second, &SyscallRequest::read(last_fd, 1));
        prop_assert_eq!(foreign.errno(), Some(varan::kernel::Errno::EBADF));
        prop_assert_eq!(
            kernel.stats().syscalls.get(&Sysno::Open).copied().unwrap_or(0),
            opens as u64
        );
    }
}
