//! Elastic-fleet integration: a follower attached to an already-running
//! N-version execution catches up via kernel checkpoint + journal replay
//! and thereafter observes the **identical** event stream —
//! sequence-for-sequence — as a follower that has been watching from the
//! start.

use std::time::Duration;

use varan::core::coordinator::{NvxConfig, NvxSystem};
use varan::core::fleet::FleetConfig;
use varan::core::program::{ProgramExit, SyscallInterface, VersionProgram};
use varan::kernel::syscall::SyscallRequest;
use varan::kernel::{Kernel, Sysno};

/// A steady stream of system calls with out-of-line payloads mixed in.
struct SustainedLoad {
    name: String,
    iterations: u32,
}

impl VersionProgram for SustainedLoad {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn run(&mut self, sys: &mut dyn SyscallInterface) -> ProgramExit {
        let fd = sys.open("/dev/zero", 0);
        for i in 0..self.iterations {
            sys.syscall(&SyscallRequest::new(Sysno::Getegid, [0; 6]));
            sys.read(fd as i32, 64);
            if i % 16 == 0 {
                sys.time();
            }
        }
        sys.close(fd as i32);
        sys.exit(0);
        ProgramExit::Exited(0)
    }
}

fn versions(iterations: u32) -> Vec<Box<dyn VersionProgram>> {
    (0..3)
        .map(|i| {
            Box::new(SustainedLoad {
                name: format!("rev-{i}"),
                iterations,
            }) as Box<dyn VersionProgram>
        })
        .collect()
}

fn journal_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "varan-fleet-convergence-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn mid_run_joiner_converges_to_the_from_start_stream() {
    let kernel = Kernel::new();
    let dir = journal_dir("converge");
    let config = NvxConfig::default().with_fleet(
        FleetConfig::new(&dir)
            .with_spares(2)
            .with_auto_rearm(false)
            .with_record_stream(true),
    );
    let running = NvxSystem::launch(&kernel, versions(4000), config).unwrap();
    let fleet = running.fleet().expect("fleet enabled");

    // One observer joins (essentially) from the start...
    let early = fleet.attach("from-start").unwrap();
    // ...and one joins mid-run, after a substantial journal backlog exists.
    while fleet.journal().tail_sequence() < 3000 {
        std::thread::yield_now();
    }
    let late = fleet.attach("mid-run").unwrap();
    assert!(late.start_sequence >= 3000, "attached mid-run");
    assert!(
        late.start_sequence > early.start_sequence,
        "the two joiners bracket the run"
    );

    assert!(
        early.wait_live(Duration::from_secs(30)),
        "from-start joiner failed: {:?}",
        early.failure()
    );
    assert!(
        late.wait_live(Duration::from_secs(30)),
        "mid-run joiner failed: {:?}",
        late.failure()
    );
    let report = running.wait();
    assert!(report.all_clean(), "exits: {:?}", report.exits);

    let early_stream = early.stream();
    let late_stream = late.stream();
    // Both observers drained the stream to its very end...
    assert_eq!(
        early_stream.last().map(|r| r.seq),
        Some(report.events_published - 1)
    );
    assert_eq!(
        late_stream.last().map(|r| r.seq),
        Some(report.events_published - 1)
    );
    // ...and on the overlap they agree sequence-for-sequence: same events,
    // same order, same results, same Lamport stamps.
    let offset = (late.start_sequence - early.start_sequence) as usize;
    assert!(!late_stream.is_empty());
    assert_eq!(&early_stream[offset..], &late_stream[..]);
    // The catch-up really went through the whole backlog.
    assert_eq!(
        late.events_observed(),
        report.events_published - late.start_sequence
    );
    assert!(late.catch_up_latency().is_some());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn leader_crash_during_catch_up_promotes_a_live_follower() {
    // A leader that crashes mid-run while a joiner may still be catching
    // up: promotion must go to a launched (live) follower — never a fleet
    // observer — and the run must survive.
    struct CrashingLoad {
        name: String,
        iterations: u32,
        crash_at: Option<u32>,
    }
    impl VersionProgram for CrashingLoad {
        fn name(&self) -> String {
            self.name.clone()
        }
        fn run(&mut self, sys: &mut dyn SyscallInterface) -> ProgramExit {
            for i in 0..self.iterations {
                if Some(i) == self.crash_at {
                    return ProgramExit::Crashed(varan::kernel::signal::Signal::Sigsegv);
                }
                sys.syscall(&SyscallRequest::new(Sysno::Getegid, [0; 6]));
                sys.time();
            }
            sys.exit(0);
            ProgramExit::Exited(0)
        }
    }

    let kernel = Kernel::new();
    let dir = journal_dir("crash");
    let config = NvxConfig::default().with_fleet(
        FleetConfig::new(&dir).with_spares(1).with_auto_rearm(false),
    );
    let versions: Vec<Box<dyn VersionProgram>> = vec![
        Box::new(CrashingLoad {
            name: "buggy-leader".into(),
            iterations: 3000,
            crash_at: Some(1500),
        }),
        Box::new(CrashingLoad {
            name: "healthy-1".into(),
            iterations: 3000,
            crash_at: None,
        }),
        Box::new(CrashingLoad {
            name: "healthy-2".into(),
            iterations: 3000,
            crash_at: None,
        }),
    ];
    let running = NvxSystem::launch(&kernel, versions, config).unwrap();
    let fleet = running.fleet().expect("fleet enabled");
    let observer = fleet.attach("observer").unwrap();
    let report = running.wait();
    assert_eq!(report.promotions, 1, "exits: {:?}", report.exits);
    assert!(report.exits[0].as_deref().unwrap().starts_with("crashed"));
    // The promoted follower is one of the launched versions (the observer
    // is not promotable), and the healthy followers finished cleanly.
    assert!(report.exits[1].as_deref().unwrap().starts_with("exited"));
    assert!(report.exits[2].as_deref().unwrap().starts_with("exited"));
    assert!(observer.failure().is_none(), "{:?}", observer.failure());
    std::fs::remove_dir_all(&dir).ok();
}
