//! Cross-crate integration tests: real server applications running under the
//! full N-version execution framework, driven by real client workloads over
//! the virtual network.

use std::time::Duration;

use varan::apps::clients::{connect_retry, redis_benchmark, wrk};
use varan::apps::revisions::{lighttpd_rules, redis_revision_set};
use varan::apps::servers::httpd::{revs, HttpServer};
use varan::apps::servers::kvstore::KvServer;
use varan::apps::servers::ServerConfig;
use varan::core::coordinator::{run_nvx, NvxConfig, NvxSystem};
use varan::core::program::run_native;
use varan::core::{SanitizedVersion, Sanitizer, VersionProgram};
use varan::kernel::Kernel;

fn web_kernel() -> Kernel {
    let kernel = Kernel::new();
    kernel
        .populate_file("/var/www/index.html", vec![b'w'; 4096])
        .unwrap();
    kernel
}

#[test]
fn kvstore_with_three_followers_serves_a_real_client() {
    let kernel = Kernel::new();
    let port = 25_101;
    let connections = 4u64;
    let config = ServerConfig::on_port(port).with_connections(connections);
    let versions: Vec<Box<dyn VersionProgram>> = (0..4)
        .map(|_| Box::new(KvServer::new(config.clone())) as Box<dyn VersionProgram>)
        .collect();
    let running = NvxSystem::launch(&kernel, versions, NvxConfig::default()).unwrap();
    let client_kernel = kernel.clone();
    let client =
        std::thread::spawn(move || redis_benchmark(&client_kernel, port, connections as usize, 20));
    let client_report = client.join().unwrap();
    let report = running.wait();

    assert_eq!(client_report.errors, 0);
    assert_eq!(client_report.requests, connections * 20);
    assert!(report.all_clean(), "{:?}", report.exits);
    // Every follower consumed the same number of events the leader produced.
    let leader_events = report.versions[0].events;
    for follower in &report.versions[1..] {
        assert_eq!(follower.events, leader_events);
        assert_eq!(follower.divergences_killed, 0);
    }
    // Descriptor transfers happened for the listener and every accepted
    // connection.
    assert!(report.versions[0].fd_transfers as u64 >= connections);
}

#[test]
fn http_server_overhead_under_nvx_is_modest() {
    // Native baseline.
    let kernel = web_kernel();
    let port = 25_201;
    let connections = 4u64;
    let mut native_server =
        HttpServer::lighttpd(ServerConfig::on_port(port).with_connections(connections));
    let client_kernel = kernel.clone();
    let client = std::thread::spawn(move || {
        wrk(&client_kernel, port, connections as usize, 6, "/index.html")
    });
    let (_, native_cycles) = run_native(&kernel, &mut native_server);
    assert_eq!(client.join().unwrap().errors, 0);

    // Two followers under the monitor.
    let kernel = web_kernel();
    let port = 25_202;
    let config = ServerConfig::on_port(port).with_connections(connections);
    let versions: Vec<Box<dyn VersionProgram>> = (0..3)
        .map(|_| Box::new(HttpServer::lighttpd(config.clone())) as Box<dyn VersionProgram>)
        .collect();
    let running = NvxSystem::launch(&kernel, versions, NvxConfig::default()).unwrap();
    let client_kernel = kernel.clone();
    let client = std::thread::spawn(move || {
        wrk(&client_kernel, port, connections as usize, 6, "/index.html")
    });
    assert_eq!(client.join().unwrap().errors, 0);
    let report = running.wait();
    assert!(report.all_clean(), "{:?}", report.exits);

    let overhead = report.overhead_vs(native_cycles);
    assert!(
        overhead > 1.0 && overhead < 1.8,
        "lighttpd overhead should be modest, got {overhead:.2}"
    );
}

#[test]
fn redis_failover_survives_a_crashing_leader_mid_request() {
    let kernel = Kernel::new();
    let port = 25_301;
    let config = ServerConfig::on_port(port).with_connections(2);
    // Buggy revision leads; seven healthy revisions follow.
    let versions = redis_revision_set(&config, true);
    let running = NvxSystem::launch(&kernel, versions, NvxConfig::default()).unwrap();

    // First connection: trigger the HMGET crash bug in the leader.
    let endpoint = connect_retry(&kernel, port, Duration::from_secs(20)).unwrap();
    endpoint.write(b"HMGET ghost field\n").unwrap();
    let mut reply = Vec::new();
    loop {
        let chunk = endpoint.read(128, true).unwrap();
        if chunk.is_empty() {
            break;
        }
        reply.extend_from_slice(&chunk);
        if reply.contains(&b'\n') {
            break;
        }
    }
    endpoint.close();
    assert!(
        String::from_utf8_lossy(&reply).contains("*-1"),
        "the promoted follower must answer the in-flight request, got {reply:?}"
    );

    // Second connection: the service keeps running under the new leader.
    let endpoint = connect_retry(&kernel, port, Duration::from_secs(20)).unwrap();
    endpoint.write(b"PING\n").unwrap();
    let pong = endpoint.read(64, true).unwrap();
    assert!(String::from_utf8_lossy(&pong).contains("PONG"));
    endpoint.close();

    let report = running.wait();
    assert_eq!(report.promotions, 1);
    // The coordinator promotes the most-caught-up live follower (not
    // necessarily the first); whichever won restarted the interrupted call.
    assert!(
        report.versions[1..].iter().any(|v| v.restarts >= 1),
        "the interrupted call is restarted by the promoted follower"
    );
}

#[test]
fn lighttpd_revisions_run_together_only_with_rewrite_rules() {
    for with_rules in [true, false] {
        let kernel = web_kernel();
        let port = if with_rules { 25_401 } else { 25_402 };
        let connections = 3u64;
        let config = ServerConfig::on_port(port).with_connections(connections);
        let versions: Vec<Box<dyn VersionProgram>> = vec![
            Box::new(HttpServer::lighttpd(config.clone()).with_revision(revs::REV_2435)),
            Box::new(HttpServer::lighttpd(config.clone()).with_revision(revs::REV_2436)),
        ];
        let rules = if with_rules {
            lighttpd_rules(revs::REV_2435, revs::REV_2436).unwrap()
        } else {
            varan::core::RuleEngine::new()
        };
        let running =
            NvxSystem::launch(&kernel, versions, NvxConfig::default().with_rules(rules)).unwrap();
        let client_kernel = kernel.clone();
        let client = std::thread::spawn(move || {
            wrk(&client_kernel, port, connections as usize, 4, "/index.html")
        });
        let client_report = client.join().unwrap();
        let report = running.wait();

        // The leader always serves the client, rules or not.
        assert_eq!(client_report.errors, 0);
        let follower_exit = report.exits[1].as_deref().unwrap_or("?");
        if with_rules {
            assert!(follower_exit.starts_with("exited"), "{follower_exit}");
            assert!(report.versions[1].divergences_allowed > 0);
        } else {
            assert!(follower_exit.starts_with("panicked"), "{follower_exit}");
            assert_eq!(report.versions[1].divergences_killed, 1);
        }
    }
}

#[test]
fn sanitized_follower_does_not_slow_the_leader() {
    let run = |sanitized: bool| {
        let kernel = Kernel::new();
        let port = if sanitized { 25_501 } else { 25_502 };
        let connections = 3u64;
        let config = ServerConfig::on_port(port).with_connections(connections);
        let follower: Box<dyn VersionProgram> = if sanitized {
            Box::new(SanitizedVersion::new(
                Box::new(KvServer::new(config.clone())),
                Sanitizer::Address,
            ))
        } else {
            Box::new(KvServer::new(config.clone()))
        };
        let versions: Vec<Box<dyn VersionProgram>> =
            vec![Box::new(KvServer::new(config.clone())), follower];
        let running = NvxSystem::launch(&kernel, versions, NvxConfig::default()).unwrap();
        let client_kernel = kernel.clone();
        let client = std::thread::spawn(move || {
            redis_benchmark(&client_kernel, port, connections as usize, 15)
        });
        assert_eq!(client.join().unwrap().errors, 0);
        running.wait()
    };
    let plain = run(false);
    let sanitized = run(true);
    assert!(plain.all_clean() && sanitized.all_clean());
    let leader_plain = plain.versions[0].total_cycles() as f64;
    let leader_sanitized = sanitized.versions[0].total_cycles() as f64;
    // The leader's cost is unchanged (within noise) even though the follower
    // runs with a 2x-slower instrumented build.
    assert!(
        leader_sanitized < leader_plain * 1.1,
        "sanitized follower must not slow the leader: {leader_plain} vs {leader_sanitized}"
    );
}

#[test]
fn single_version_equals_interception_only_mode() {
    let kernel = Kernel::new();
    let port = 25_601;
    let connections = 2u64;
    let config = ServerConfig::on_port(port).with_connections(connections);
    let versions: Vec<Box<dyn VersionProgram>> = vec![Box::new(KvServer::new(config))];
    let running = NvxSystem::launch(&kernel, versions, NvxConfig::default()).unwrap();
    let client_kernel = kernel.clone();
    let client = std::thread::spawn(move || {
        redis_benchmark(&client_kernel, port, connections as usize, 10)
    });
    assert_eq!(client.join().unwrap().errors, 0);
    let report = running.wait();
    assert!(report.all_clean());
    assert_eq!(report.promotions, 0);
    assert!(report.events_published > 0);
}

#[test]
fn run_nvx_convenience_wrapper_matches_launch_and_wait() {
    struct Tiny;
    impl VersionProgram for Tiny {
        fn name(&self) -> String {
            "tiny".into()
        }
        fn run(
            &mut self,
            sys: &mut dyn varan::core::SyscallInterface,
        ) -> varan::core::ProgramExit {
            sys.write(1, b"tiny\n");
            sys.exit(0);
            varan::core::ProgramExit::Exited(0)
        }
    }
    let kernel = Kernel::new();
    let report = run_nvx(
        &kernel,
        vec![Box::new(Tiny), Box::new(Tiny), Box::new(Tiny)],
        NvxConfig::default(),
    )
    .unwrap();
    assert_eq!(report.versions.len(), 3);
    assert!(report.all_clean());
}
